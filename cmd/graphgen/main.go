// Command graphgen writes synthetic benchmark graphs in METIS format.
//
// Besides generating fresh instances (-family with -n), it can produce a
// perturbed copy of a graph with -mutate: a fraction of the edges is
// replaced by fresh random ones (edge churn), modeling the drift between
// two revisions of a dynamic graph so examples and benchmarks can exercise
// repartitioning realistically. The base graph is either generated or read
// from a file with -in.
//
// Examples:
//
//	graphgen -family rgg -n 100000 -seed 7 -out rgg17.metis
//	graphgen -family web -n 50000 -out web-v1.metis
//	graphgen -in web-v1.metis -mutate 0.05 -seed 9 -out web-v2.metis
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		family = flag.String("family", "rgg", "rgg, delaunay, rmat, ba, web, mesh3d, grid")
		n      = flag.Int("n", 10000, "approximate node count")
		seed   = flag.Uint64("seed", 1, "random seed")
		in     = flag.String("in", "", "read the base graph from this file instead of generating it")
		mutate = flag.Float64("mutate", 0, "churn this fraction of the edges (0 = none): drop + re-insert random edges")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "metis", "output format: metis or binary")
	)
	flag.Parse()

	var (
		g   *graph.Graph
		err error
	)
	if *in != "" {
		g, err = readGraph(*in)
	} else {
		g, err = gen.ByFamily(gen.Family(*family), int32(*n), *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *mutate < 0 || *mutate > 1 {
		fmt.Fprintf(os.Stderr, "graphgen: -mutate %g outside [0, 1]\n", *mutate)
		os.Exit(1)
	}
	if *mutate > 0 {
		before := g.NumEdges()
		g = gen.Perturb(g, *mutate, *seed)
		fmt.Fprintf(os.Stderr, "mutated: %d -> %d edges (churn %.1f%%)\n",
			before, g.NumEdges(), 100**mutate)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "metis":
		err = graph.WriteMetis(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	src := *family
	if *in != "" {
		src = *in
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d\n", src, g.NumNodes(), g.NumEdges())
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bgf") || strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	return graph.ReadMetis(f)
}
