// Command graphgen writes synthetic benchmark graphs in METIS format.
//
// Example:
//
//	graphgen -family rgg -n 100000 -seed 7 -out rgg17.metis
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		family = flag.String("family", "rgg", "rgg, delaunay, rmat, ba, web, mesh3d, grid")
		n      = flag.Int("n", 10000, "approximate node count")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "metis", "output format: metis or binary")
	)
	flag.Parse()

	g, err := gen.ByFamily(gen.Family(*family), int32(*n), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "metis":
		err = graph.WriteMetis(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d\n", *family, g.NumNodes(), g.NumEdges())
}
