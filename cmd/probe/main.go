// Command probe reports how far the matching-based baseline can coarsen
// each benchmark instance before stalling — the diagnostic behind the
// paper's "ineffective coarsening" observation (§V-B) and the calibration
// source for the memory-budget divisor used in the tables.
package main

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/matchbase"
)

func main() {
	for _, inst := range exp.BenchmarkSet(1) {
		g := inst.Gen(42)
		cfg := matchbase.DefaultConfig(2)
		res, err := matchbase.Run(4, g, cfg)
		if err != nil {
			fmt.Printf("%-12s err %v\n", inst.Name, err)
			continue
		}
		fmt.Printf("%-12s n=%6d coarsest=%6d ratio=n/%0.1f stalled=%v levels=%d\n",
			inst.Name, g.NumNodes(), res.Stats.CoarsestN,
			float64(g.NumNodes())/float64(res.Stats.CoarsestN), res.Stats.Stalled, len(res.Stats.Levels))
	}
}
