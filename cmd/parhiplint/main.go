// Command parhiplint runs the project-invariant analyzers over the module:
// SPMD collective discipline, documented mutex guards, determinism of the
// decision packages, hot-path allocation rules, and the bare-[]int32 API
// audit. It is the CI lint gate; run it locally with
//
//	go run ./cmd/parhiplint ./...
//
// Findings print as file:line: analyzer: message (or structured records
// with -json) and any finding sets the exit status to 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON records")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parhiplint [-json] [-only a,b] [./...]\n\n"+
			"Runs the project's invariant analyzers over the whole module.\n"+
			"The package pattern argument is accepted for familiarity; the\n"+
			"module containing the working directory is always analyzed.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "parhiplint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parhiplint: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parhiplint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(mod, analyzers)

	if *jsonOut {
		type record struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			if err := enc.Encode(record{
				File: rel, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "parhiplint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parhiplint: %d finding(s) across %d package(s)\n",
			len(diags), len(mod.Packages))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
