// Command benchcmp diffs two cmd/bench -json documents and gates on
// regressions, comparing records matched by (experiment, graph, algo, k,
// pes). Quality (cut) regressions beyond -cut-tol fail the run with exit
// status 1 — as do records that flipped to failed/infeasible, and records
// present in the baseline but missing from the current document. Timing
// drift is reported but by default never fails the run: CI machines are
// too noisy for wall-clock gates on every PR, while a cut is a
// deterministic function of (graph, seed, algorithm) for fast/minimal and
// only budget-dependent for eco — which is why the default tolerance is
// generous enough to absorb eco's time-budget nondeterminism. -time-fail
// promotes timing drift beyond -time-tol to a failure; the scheduled
// (non-PR) benchmark job runs with it on dedicated time, where wall-clock
// is trustworthy.
//
// Every matched, non-failed record also reports its speedup (baseline
// seconds / current seconds), and the run ends with a geometric-mean
// speedup summary line.
//
//	bench -table2 -json > current.json
//	benchcmp -baseline BENCH_2026-08-07_table2.json -current current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline bench -json document (committed BENCH_*.json)")
		currentPath  = flag.String("current", "", "current bench -json document to compare")
		cutTol       = flag.Float64("cut-tol", 0.15, "relative cut increase tolerated before failing")
		timeTol      = flag.Float64("time-tol", 0.50, "relative slowdown reported as a timing warning")
		timeFail     = flag.Bool("time-fail", false, "fail (exit 1) on timing drift beyond -time-tol instead of warning; for scheduled benchmark jobs on quiet machines")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: need -baseline and -current")
		os.Exit(2)
	}

	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	curByKey := make(map[string]exp.Record, len(cur.Records))
	for _, r := range cur.Records {
		curByKey[recordKey(r)] = r
	}

	var failures, warnings int
	var logSpeedupSum float64 // sum of ln(speedup) over timed records
	var speedups int
	minSpeedup, maxSpeedup := math.Inf(1), math.Inf(-1)
	for _, b := range base.Records {
		key := recordKey(b)
		c, ok := curByKey[key]
		if !ok {
			fmt.Printf("FAIL %-40s missing from current document\n", key)
			failures++
			continue
		}
		if b.Failed {
			// A record that was already failing in the baseline cannot
			// regress; note a recovery, otherwise stay silent.
			if !c.Failed {
				fmt.Printf("GOOD %-40s recovered (was failing: %s)\n", key, b.Reason)
			}
			continue
		}
		if c.Failed {
			fmt.Printf("FAIL %-40s now failing: %s\n", key, c.Reason)
			failures++
			continue
		}
		if b.Feasible && !c.Feasible {
			fmt.Printf("FAIL %-40s result went infeasible (overload %d)\n", key, c.WorstOverload)
			failures++
			continue
		}
		if b.Cut > 0 && c.Cut > b.Cut*(1+*cutTol) {
			fmt.Printf("FAIL %-40s cut %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)\n",
				key, b.Cut, c.Cut, 100*(c.Cut/b.Cut-1), 100**cutTol)
			failures++
			continue
		}
		speedup := 0.0
		if b.Seconds > 0 && c.Seconds > 0 {
			speedup = b.Seconds / c.Seconds
			logSpeedupSum += math.Log(speedup)
			speedups++
			minSpeedup = math.Min(minSpeedup, speedup)
			maxSpeedup = math.Max(maxSpeedup, speedup)
		}
		if b.Seconds > 0 && c.Seconds > b.Seconds*(1+*timeTol) {
			if *timeFail {
				fmt.Printf("FAIL %-40s time %.3fs -> %.3fs (+%.1f%%, tolerance %.0f%%)\n",
					key, b.Seconds, c.Seconds, 100*(c.Seconds/b.Seconds-1), 100**timeTol)
				failures++
			} else {
				fmt.Printf("warn %-40s time %.3fs -> %.3fs (+%.1f%%; timing is warn-only)\n",
					key, b.Seconds, c.Seconds, 100*(c.Seconds/b.Seconds-1))
				warnings++
			}
			continue
		}
		fmt.Printf("ok   %-40s cut %.0f -> %.0f, time %.3fs -> %.3fs (%.2fx)\n",
			key, b.Cut, c.Cut, b.Seconds, c.Seconds, speedup)
	}

	fmt.Printf("\n%d baseline records, %d failures, %d timing warnings\n",
		len(base.Records), failures, warnings)
	if speedups > 0 {
		fmt.Printf("speedup vs baseline: geomean %.2fx over %d records (min %.2fx, max %.2fx)\n",
			math.Exp(logSpeedupSum/float64(speedups)), speedups, minSpeedup, maxSpeedup)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func recordKey(r exp.Record) string {
	return fmt.Sprintf("%s/%s/%s/k=%d/p=%d", r.Experiment, r.Graph, r.Algo, r.K, r.PEs)
}

func readReport(path string) (exp.JSONReport, error) {
	var rep exp.JSONReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("parse %s: %w", path, err)
	}
	return rep, nil
}
