// Command loadgen hammers a running parhipd daemon with synthetic traffic
// for scenario diversity: it generates graphs from several families
// (internal/gen), uploads them in the binary format, then submits partition
// jobs from a pool of concurrent clients, repeating a configurable fraction
// of (graph, options) combinations so the fingerprint-keyed result cache
// gets exercised alongside cold runs.
//
//	parhipd -addr :8090 &
//	loadgen -addr http://localhost:8090 -jobs 64 -concurrency 8 -dup 0.4 -cancel 0.2
//
// -cancel makes a fraction of the submitted jobs be cancelled mid-flight
// with DELETE /v1/jobs/{id} (exercising the service's queued- and
// running-job cancellation paths); -job-timeout-ms attaches a server-side
// timeout_ms to every submission; -repart makes a fraction of the jobs
// migration-aware repartition runs seeded via prev_job_id from an earlier
// completed job on the same graph (exercising the service's dynamic-graph
// path and its prev-aware cache keying). It reports client-side latency
// percentiles and the server's own /v1/stats.
//
// -stream switches loadgen into the live-graph scenario instead: it
// uploads one community graph, promotes it with POST /v1/graphs/{id}/live,
// streams -stream-churn edge churn as sequence-numbered delta batches
// (placement lookups interleaved), and verifies the controller
// auto-repartitioned with a feasible final partition — CI's live-smoke
// gate:
//
//	loadgen -addr http://localhost:8090 -stream -n 3000 -stream-k 8 -mode eco
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

type jobSpec struct {
	GraphID string
	K       int32
	Seed    uint64
	Cancel  bool // DELETE the job shortly after submission
	Repart  bool // seed with prev_job_id of a done job on the same graph
}

// prevRegistry records done jobs per graph so repartition submissions can
// reference them. Seeds differ between specs, so a repartition spec keyed
// on an earlier job exercises a genuinely different cache entry.
type prevRegistry struct {
	mu   sync.Mutex
	done map[string][]string // graph|k -> done job IDs
}

func key(graphID string, k int32) string { return fmt.Sprintf("%s|%d", graphID, k) }

func (r *prevRegistry) add(graphID string, k int32, jobID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done == nil {
		r.done = make(map[string][]string)
	}
	r.done[key(graphID, k)] = append(r.done[key(graphID, k)], jobID)
}

func (r *prevRegistry) pick(graphID string, k int32) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := r.done[key(graphID, k)]
	if len(ids) == 0 {
		return "", false
	}
	return ids[len(ids)-1], true
}

type outcome struct {
	spec      jobSpec
	latency   time.Duration
	cached    bool
	failed    bool
	cancelled bool
	repart    bool // submitted with prev_job_id
	migrated  int64
	err       string
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8090", "parhipd base URL")
		jobs        = flag.Int("jobs", 32, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent clients")
		nNodes      = flag.Int("n", 2000, "approximate nodes per generated graph")
		nGraphs     = flag.Int("graphs", 6, "distinct graphs to upload")
		families    = flag.String("families", "ba,rmat,web,delaunay,rgg,grid", "comma-separated generator families")
		kset        = flag.String("kset", "2,4,8", "comma-separated block counts to draw from")
		mode        = flag.String("mode", "fast", "partitioning mode: fast, eco or minimal")
		dup         = flag.Float64("dup", 0.3, "fraction of submissions repeating an earlier (graph, options) combo")
		cancelFrac  = flag.Float64("cancel", 0, "fraction of jobs cancelled mid-flight via DELETE")
		repartFrac  = flag.Float64("repart", 0, "fraction of jobs submitted as repartitions of an earlier done job (prev_job_id)")
		jobTimeout  = flag.Int64("job-timeout-ms", 0, "server-side timeout_ms attached to every job (0 = none)")
		seed        = flag.Int64("seed", 1, "load generator seed")
		timeout     = flag.Duration("timeout", 5*time.Minute, "per-job completion timeout")

		stream        = flag.Bool("stream", false, "run the live-graph streaming scenario instead of batch jobs")
		streamK       = flag.Int("stream-k", 8, "block count for the -stream live graph")
		streamChurn   = flag.Float64("stream-churn", 0.05, "fraction of edges churned over a -stream run")
		streamBatches = flag.Int("stream-batches", 10, "delta batches a -stream run is split into")
	)
	flag.Parse()

	if *stream {
		runStream(streamCfg{
			addr:    *addr,
			n:       int32(*nNodes),
			k:       int32(*streamK),
			mode:    *mode,
			churn:   *streamChurn,
			batches: *streamBatches,
			seed:    *seed,
			timeout: *timeout,
		})
		return
	}

	fams := strings.Split(*families, ",")
	var ks []int32
	for _, s := range strings.Split(*kset, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 1 {
			log.Fatalf("loadgen: bad -kset entry %q", s)
		}
		ks = append(ks, int32(k))
	}

	// Generate and upload the graph pool.
	rnd := rand.New(rand.NewSource(*seed))
	var graphIDs []string
	for i := 0; i < *nGraphs; i++ {
		fam := gen.Family(strings.TrimSpace(fams[i%len(fams)]))
		g, err := gen.ByFamily(fam, int32(*nNodes), uint64(*seed)+uint64(i))
		if err != nil {
			log.Fatalf("loadgen: generate %s: %v", fam, err)
		}
		id, err := upload(*addr, g)
		if err != nil {
			log.Fatalf("loadgen: upload %s graph: %v", fam, err)
		}
		fmt.Printf("uploaded %-8s n=%-7d m=%-8d -> %s\n", fam, g.NumNodes(), g.NumEdges(), id)
		graphIDs = append(graphIDs, id)
	}

	// Pre-draw the job specs so the dup fraction is exact regardless of
	// client interleaving.
	var specs []jobSpec
	for i := 0; i < *jobs; i++ {
		if len(specs) > 0 && rnd.Float64() < *dup {
			dupSpec := specs[rnd.Intn(len(specs))]
			dupSpec.Cancel = rnd.Float64() < *cancelFrac
			specs = append(specs, dupSpec)
			continue
		}
		specs = append(specs, jobSpec{
			GraphID: graphIDs[rnd.Intn(len(graphIDs))],
			K:       ks[rnd.Intn(len(ks))],
			Seed:    uint64(rnd.Intn(4)) + 1,
			Cancel:  rnd.Float64() < *cancelFrac,
			Repart:  rnd.Float64() < *repartFrac,
		})
	}

	work := make(chan jobSpec)
	results := make(chan outcome, *jobs)
	reg := &prevRegistry{}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range work {
				results <- runJob(*addr, spec, *mode, *timeout, *jobTimeout, reg)
			}
		}()
	}
	for _, spec := range specs {
		work <- spec
	}
	close(work)
	wg.Wait()
	close(results)
	elapsed := time.Since(start)

	// Summarize.
	var (
		latencies []time.Duration
		cached    int
		failed    int
		cancelled int
		reparts   int
		migrated  int64
		errCounts = map[string]int{}
	)
	for o := range results {
		if o.cancelled {
			cancelled++
			continue
		}
		if o.failed {
			failed++
			errCounts[o.err]++
			fmt.Fprintf(os.Stderr, "job %+v failed: %s\n", o.spec, o.err)
			continue
		}
		latencies = append(latencies, o.latency)
		if o.cached {
			cached++
		}
		if o.repart {
			reparts++
			migrated += o.migrated
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("\n%d jobs in %v (%.1f jobs/s), %d failed, %d cancelled, %d served from cache\n",
		*jobs, elapsed.Round(time.Millisecond),
		float64(*jobs)/elapsed.Seconds(), failed, cancelled, cached)
	if reparts > 0 {
		fmt.Printf("%d repartition jobs, %d nodes migrated in total\n", reparts, migrated)
	}
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		// The P50/P95/P99 triple mirrors the server's own
		// parhipd_job_run_seconds histogram quantiles, so the client-side
		// view can be eyeballed against GET /metrics after a run.
		fmt.Printf("latency min/avg/p50/p95/p99/max = %v / %v / %v / %v / %v / %v\n",
			latencies[0].Round(time.Millisecond),
			(sum / time.Duration(len(latencies))).Round(time.Millisecond),
			pct(0.50).Round(time.Millisecond),
			pct(0.95).Round(time.Millisecond),
			pct(0.99).Round(time.Millisecond),
			latencies[len(latencies)-1].Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Printf("errors (%d total):\n", failed)
		msgs := make([]string, 0, len(errCounts))
		for msg := range errCounts {
			msgs = append(msgs, msg)
		}
		sort.Slice(msgs, func(i, j int) bool {
			if errCounts[msgs[i]] != errCounts[msgs[j]] {
				return errCounts[msgs[i]] > errCounts[msgs[j]]
			}
			return msgs[i] < msgs[j]
		})
		for _, msg := range msgs {
			fmt.Printf("  %4d x %s\n", errCounts[msg], msg)
		}
	}
	printServerStats(*addr)
	if failed > 0 {
		os.Exit(1)
	}
}

func upload(addr string, g *graph.Graph) (string, error) {
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		return "", err
	}
	resp, err := http.Post(addr+"/v1/graphs", "application/octet-stream", &buf)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var meta struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return "", err
	}
	return meta.ID, nil
}

func runJob(addr string, spec jobSpec, mode string, timeout time.Duration, jobTimeoutMS int64, reg *prevRegistry) outcome {
	o := outcome{spec: spec}
	start := time.Now()
	req := map[string]any{
		"graph_id": spec.GraphID,
		"k":        spec.K,
		"options":  map[string]any{"mode": mode, "seed": spec.Seed},
	}
	if spec.Repart {
		// Repartition against the most recent done job on this graph; when
		// none finished yet the job simply runs cold.
		if prevID, ok := reg.pick(spec.GraphID, spec.K); ok {
			req["prev_job_id"] = prevID
			o.repart = true
		}
	}
	if jobTimeoutMS > 0 {
		req["timeout_ms"] = jobTimeoutMS
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		o.failed, o.err = true, err.Error()
		return o
	}
	var view struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		o.failed, o.err = true, err.Error()
		return o
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		o.failed, o.err = true, fmt.Sprintf("submit status %d: %s", resp.StatusCode, view.Error)
		return o
	}
	if spec.Cancel && view.State != "done" {
		// Exercise the cancellation path: a prompt DELETE hits the job while
		// it is queued or running. A 409 means it finished first — fine, the
		// poll below observes whichever terminal state won the race.
		del, err := http.NewRequest(http.MethodDelete, addr+"/v1/jobs/"+view.ID, nil)
		if err == nil {
			if resp, err := http.DefaultClient.Do(del); err == nil {
				resp.Body.Close()
			}
		}
	}
	deadline := time.Now().Add(timeout)
	for view.State != "done" && view.State != "failed" && view.State != "cancelled" {
		if time.Now().After(deadline) {
			o.failed, o.err = true, "timeout"
			return o
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			o.failed, o.err = true, err.Error()
			return o
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			o.failed, o.err = true, err.Error()
			return o
		}
	}
	switch view.State {
	case "failed":
		o.failed, o.err = true, view.Error
		return o
	case "cancelled":
		if !spec.Cancel && jobTimeoutMS == 0 {
			// Nobody asked for this cancellation: count it as a failure.
			o.failed, o.err = true, "unexpectedly cancelled: "+view.Error
			return o
		}
		o.cancelled = true
		return o
	}
	o.latency = time.Since(start)
	o.cached = view.Cached
	reg.add(spec.GraphID, spec.K, view.ID)
	if o.repart {
		// Pull the migration stats off the result body so the summary can
		// report total churn.
		if r, err := http.Get(addr + "/v1/jobs/" + view.ID + "/result"); err == nil {
			var res struct {
				MigratedNodes int64 `json:"migrated_nodes"`
			}
			if json.NewDecoder(r.Body).Decode(&res) == nil {
				o.migrated = res.MigratedNodes
			}
			r.Body.Close()
		}
	}
	return o
}

func printServerStats(addr string) {
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: fetch /v1/stats: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var stats struct {
		QueueDepth int `json:"queue_depth"`
		Running    int `json:"running"`
		Jobs       struct {
			Submitted, Completed, Failed, Cancelled int64
		} `json:"jobs"`
		Cache struct {
			Size    int     `json:"size"`
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
		Core struct {
			Runs    int64   `json:"runs"`
			TotalMS float64 `json:"total_ms"`
		} `json:"core"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: decode /v1/stats: %v\n", err)
		return
	}
	fmt.Printf("server: %d/%d/%d/%d jobs submitted/completed/failed/cancelled; cache %d entries, %d hits / %d misses (%.0f%% hit rate); %d core runs, %.0fms partitioner time\n",
		stats.Jobs.Submitted, stats.Jobs.Completed, stats.Jobs.Failed, stats.Jobs.Cancelled,
		stats.Cache.Size, stats.Cache.Hits, stats.Cache.Misses, 100*stats.Cache.HitRate,
		stats.Core.Runs, stats.Core.TotalMS)
}
