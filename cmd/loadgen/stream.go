package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/gen"
)

// streamCfg parameterizes the -stream scenario.
type streamCfg struct {
	addr    string
	n       int32   // nodes in the generated community graph
	k       int32   // blocks
	mode    string  // partitioning mode for the auto-repartition jobs
	churn   float64 // fraction of edges to churn over the whole run
	batches int     // delta batches to stream
	seed    int64
	timeout time.Duration
}

// liveStatus mirrors the GET /v1/graphs/{id}/live payload fields the
// stream scenario checks.
type liveStatus struct {
	Epoch            int64   `json:"epoch"`
	Seq              int64   `json:"seq"`
	PendingDeltas    int64   `json:"pending_deltas"`
	ChurnFraction    float64 `json:"churn_fraction"`
	InFlight         bool    `json:"in_flight"`
	AutoRepartitions int64   `json:"auto_repartitions"`
	Swaps            int64   `json:"swaps"`
	LastError        string  `json:"last_error"`
	Cut              *int64  `json:"cut"`
	Feasible         *bool   `json:"feasible"`
}

// runStream drives the live-graph path end to end against a running
// daemon: upload a community graph, promote it to live, stream churn as
// sequence-numbered delta batches with placement lookups interleaved,
// then verify the controller auto-repartitioned and the final state is
// clean. Exits the process non-zero on any violation, so CI can use it
// as a smoke gate.
func runStream(cfg streamCfg) {
	g, _ := gen.PlantedPartition(cfg.n, 30, 8, 0.4, uint64(cfg.seed))
	id, err := upload(cfg.addr, g)
	if err != nil {
		log.Fatalf("loadgen -stream: upload: %v", err)
	}
	fmt.Printf("uploaded planted graph n=%d m=%d -> %s\n", g.NumNodes(), g.NumEdges(), id)

	enable := map[string]any{
		"k":       cfg.k,
		"options": map[string]any{"mode": cfg.mode, "pes": 4, "seed": 1},
		"policy":  map[string]any{"churn_fraction": 0.05, "max_staleness_ms": 500},
	}
	if code, body := postJSON(cfg.addr+"/v1/graphs/"+id+"/live", enable, nil); code != http.StatusCreated {
		log.Fatalf("loadgen -stream: enable live: status %d: %s", code, body)
	}

	deadline := time.Now().Add(cfg.timeout)
	st := awaitStatus(cfg.addr, id, deadline, "initial partition", func(s liveStatus) bool {
		return s.Epoch >= 1
	})
	fmt.Printf("initial partition swapped in: epoch %d, cut %s\n", st.Epoch, cutString(st))

	// Stream the churn. Placement lookups ride along with every batch and
	// must stay valid with a monotone epoch across the swaps.
	deltas := gen.PerturbDeltas(g, cfg.churn, uint64(cfg.seed)+1)
	per := (len(deltas) + cfg.batches - 1) / cfg.batches
	lastEpoch, lookups := st.Epoch, 0
	seq := int64(0)
	for i := 0; i < len(deltas); i += per {
		end := i + per
		if end > len(deltas) {
			end = len(deltas)
		}
		seq++
		var ur struct {
			Applied  int   `json:"applied"`
			Replayed bool  `json:"replayed"`
			Epoch    int64 `json:"epoch"`
		}
		code, body := postJSON(cfg.addr+"/v1/graphs/"+id+"/updates", deltaBatch(seq, deltas[i:end]), &ur)
		if code != http.StatusOK || ur.Applied != end-i {
			log.Fatalf("loadgen -stream: batch %d: status %d: %s", seq, code, body)
		}
		for _, v := range []int64{0, int64(cfg.n) / 2, int64(cfg.n) - 1} {
			ep := lookupPlacement(cfg.addr, id, v, cfg.k)
			if ep < lastEpoch {
				log.Fatalf("loadgen -stream: placement epoch went backwards: %d -> %d", lastEpoch, ep)
			}
			lastEpoch, lookups = ep, lookups+1
		}
	}
	fmt.Printf("streamed %d deltas in %d batches, %d placement lookups, epoch now %d\n",
		len(deltas), seq, lookups, lastEpoch)

	// Idempotent replay: an already-applied sequence number is a no-op.
	var ur struct {
		Applied  int  `json:"applied"`
		Replayed bool `json:"replayed"`
	}
	if code, body := postJSON(cfg.addr+"/v1/graphs/"+id+"/updates", deltaBatch(seq, nil), &ur); code != http.StatusOK || !ur.Replayed || ur.Applied != 0 {
		log.Fatalf("loadgen -stream: replay of batch %d not idempotent: status %d: %s", seq, code, body)
	}

	// Drain: between the churn trigger and the staleness backstop, every
	// delta must end up incorporated into a swapped-in partition.
	st = awaitStatus(cfg.addr, id, deadline, "drain", func(s liveStatus) bool {
		return s.PendingDeltas == 0 && !s.InFlight
	})
	switch {
	case st.LastError != "":
		log.Fatalf("loadgen -stream: live graph reports error: %s", st.LastError)
	case st.AutoRepartitions < 2 || st.Epoch < 2:
		log.Fatalf("loadgen -stream: controller never auto-repartitioned after churn (runs %d, epoch %d)",
			st.AutoRepartitions, st.Epoch)
	case st.Feasible == nil || !*st.Feasible:
		log.Fatalf("loadgen -stream: final partition infeasible (%+v)", st)
	}
	fmt.Printf("live stream OK: %d auto-repartitions, %d swaps, final epoch %d, cut %s\n",
		st.AutoRepartitions, st.Swaps, st.Epoch, cutString(st))
}

func cutString(s liveStatus) string {
	if s.Cut == nil {
		return "?"
	}
	return fmt.Sprintf("%d", *s.Cut)
}

// deltaBatch renders gen edge deltas as the wire batch for seq.
func deltaBatch(seq int64, ds []gen.EdgeDelta) map[string]any {
	out := make([]map[string]any, 0, len(ds))
	for _, d := range ds {
		op := "remove_edge"
		if d.Add {
			op = "add_edge"
		}
		out = append(out, map[string]any{"op": op, "u": d.U, "v": d.V, "w": d.W})
	}
	return map[string]any{"seq": seq, "deltas": out}
}

// postJSON posts v and decodes the response into out (when non-nil),
// returning the status code and raw body.
func postJSON(url string, v any, out any) (int, string) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatalf("loadgen -stream: marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("loadgen -stream: POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("loadgen -stream: decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// lookupPlacement fetches one node's placement and validates the block
// range, returning the epoch it was served at.
func lookupPlacement(addr, id string, v int64, k int32) int64 {
	resp, err := http.Get(fmt.Sprintf("%s/v1/graphs/%s/placement/%d", addr, id, v))
	if err != nil {
		log.Fatalf("loadgen -stream: placement: %v", err)
	}
	defer resp.Body.Close()
	var pv struct {
		Block int32 `json:"block"`
		Epoch int64 `json:"epoch"`
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("loadgen -stream: placement of node %d: status %d: %s", v, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pv); err != nil {
		log.Fatalf("loadgen -stream: decode placement: %v", err)
	}
	if pv.Block < 0 || pv.Block >= k {
		log.Fatalf("loadgen -stream: node %d placed in block %d outside [0,%d)", v, pv.Block, k)
	}
	return pv.Epoch
}

// awaitStatus polls the live status until cond holds or deadline passes.
func awaitStatus(addr, id string, deadline time.Time, what string, cond func(liveStatus) bool) liveStatus {
	for {
		resp, err := http.Get(addr + "/v1/graphs/" + id + "/live")
		if err != nil {
			log.Fatalf("loadgen -stream: live status: %v", err)
		}
		var st liveStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("loadgen -stream: decode live status: %v", err)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			log.Fatalf("loadgen -stream: timed out waiting for %s (status %+v)", what, st)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
