// Command parhip partitions a graph from the command line.
//
// The input is either a METIS-format graph file (-graph) or a generated
// instance (-family with -n). Output is a quality report and, optionally,
// the block assignment (one line per node) written to -out.
//
// Examples:
//
//	parhip -family web -n 20000 -k 8 -pes 8 -mode eco
//	parhip -graph mygraph.metis -k 2 -out blocks.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "METIS graph file to partition")
		family    = flag.String("family", "", "generated family: rgg, delaunay, rmat, ba, web, mesh3d, grid")
		n         = flag.Int("n", 10000, "node count for generated graphs")
		seed      = flag.Uint64("seed", 1, "random seed")
		k         = flag.Int("k", 2, "number of blocks")
		pes       = flag.Int("pes", 4, "simulated processing elements")
		mode      = flag.String("mode", "fast", "fast, eco or minimal")
		class     = flag.String("class", "auto", "graph class: social, mesh or auto")
		eps       = flag.Float64("eps", 0.03, "allowed imbalance")
		baseline  = flag.Bool("baseline", false, "run the matching-based baseline instead")
		out       = flag.String("out", "", "write the block of each node to this file")
	)
	flag.Parse()

	g, cls, err := loadGraph(*graphFile, *family, int32(*n), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parhip:", err)
		os.Exit(1)
	}
	opt := parhip.Options{
		PEs:  *pes,
		Eps:  *eps,
		Seed: *seed,
	}
	switch *mode {
	case "fast":
		opt.Mode = parhip.Fast
	case "eco":
		opt.Mode = parhip.Eco
	case "minimal":
		opt.Mode = parhip.Minimal
	default:
		fmt.Fprintf(os.Stderr, "parhip: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	switch *class {
	case "social":
		opt.Class = parhip.Social
	case "mesh":
		opt.Class = parhip.Mesh
	case "auto":
		opt.Class = cls
	default:
		fmt.Fprintf(os.Stderr, "parhip: unknown class %q\n", *class)
		os.Exit(1)
	}

	fmt.Printf("graph: n=%d m=%d   k=%d  pes=%d  mode=%s\n",
		g.NumNodes(), g.NumEdges(), *k, *pes, *mode)
	start := time.Now()
	var res parhip.Result
	if *baseline {
		res, err = parhip.PartitionBaseline(g, int32(*k), opt, 0)
	} else {
		res, err = parhip.Partition(g, int32(*k), opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parhip:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("cut=%d  imbalance=%.4f  feasible=%v  commvol=%d  time=%.3fs\n",
		res.Cut, res.Imbalance, res.Feasible,
		parhip.CommunicationVolume(g, res.Part, int32(*k)), elapsed.Seconds())
	if len(res.Stats.Levels) > 0 {
		fmt.Print("hierarchy:")
		for _, lv := range res.Stats.Levels {
			fmt.Printf(" %d", lv.N)
		}
		fmt.Println(" nodes")
	}
	if *out != "" {
		if err := writeBlocks(*out, res.Part); err != nil {
			fmt.Fprintln(os.Stderr, "parhip:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func loadGraph(file, family string, n int32, seed uint64) (*parhip.Graph, parhip.GraphClass, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		var g *parhip.Graph
		if strings.HasSuffix(file, ".bgf") || strings.HasSuffix(file, ".bin") {
			g, err = graph.ReadBinary(f)
		} else {
			g, err = parhip.ReadMetis(f)
		}
		return g, parhip.Social, err
	}
	if family == "" {
		return nil, 0, fmt.Errorf("need -graph or -family")
	}
	g, err := gen.ByFamily(gen.Family(family), n, seed)
	if err != nil {
		return nil, 0, err
	}
	cls := parhip.Social
	switch gen.Family(family) {
	case gen.FamilyRGG, gen.FamilyDelaunay, gen.FamilyMesh3D, gen.FamilyGrid:
		cls = parhip.Mesh
	}
	return g, cls, nil
}

func writeBlocks(path string, part []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, b := range part {
		w.WriteString(strconv.Itoa(int(b)))
		w.WriteByte('\n')
	}
	return w.Flush()
}
