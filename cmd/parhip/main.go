// Command parhip partitions a graph from the command line.
//
// The input is either a METIS-format graph file (-graph) or a generated
// instance (-family with -n). Output is a quality report and, optionally,
// the partition written to -out: the versioned text partition format by
// default (a '%%' header plus one block per node per line, readable by
// legacy block-per-line parsers), or the binary format when the file name
// ends in .bpart. A partition saved this way can seed a later
// migration-aware repartitioning run of a drifted graph via -prev (any
// partition format, including legacy block-per-line files); the report
// then includes how many nodes migrated. A SIGINT (Ctrl-C) or SIGTERM
// cancels the run cooperatively: the simulated ranks unwind at the next
// superstep, partial progress statistics are printed, and the process
// exits with status 130. -progress streams per-level checkpoint events to
// stderr while the run is in flight.
//
// Examples:
//
//	parhip -family web -n 20000 -k 8 -pes 8 -mode eco -progress
//	parhip -graph mygraph.metis -k 2 -out blocks.part
//	parhip -graph mygraph-v2.metis -prev blocks.part -out blocks-v2.part
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "METIS graph file to partition")
		family    = flag.String("family", "", "generated family: rgg, delaunay, rmat, ba, web, mesh3d, grid")
		n         = flag.Int("n", 10000, "node count for generated graphs")
		seed      = flag.Uint64("seed", 1, "random seed")
		k         = flag.Int("k", 2, "number of blocks")
		pes       = flag.Int("pes", 4, "simulated processing elements")
		mode      = flag.String("mode", "fast", "fast, eco or minimal")
		class     = flag.String("class", "auto", "graph class: social, mesh or auto")
		eps       = flag.Float64("eps", 0.03, "allowed imbalance")
		baseline  = flag.Bool("baseline", false, "run the matching-based baseline instead")
		progress  = flag.Bool("progress", false, "stream per-level progress events to stderr")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		prevFile  = flag.String("prev", "", "previous partition file: run a migration-aware repartition seeded with it")
		out       = flag.String("out", "", "write the partition to this file (text format; binary when the name ends in .bpart)")
		traceFile = flag.String("trace", "", "record per-rank spans and write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
		workers   = flag.Int("workers", 0, "OS threads per rank for superstep compute (0 = NumCPU / ranks in this process; results are bit-identical for any value)")
		backend   = flag.String("transport", "inproc", "rank communication: inproc (all ranks in this process) or tcp (this process hosts one rank of a multi-process world)")
		rank      = flag.Int("rank", 0, "tcp: rank this process hosts, in [0, world size)")
		peersList = flag.String("peers", "", "tcp: rank-ordered comma-separated host:port list; its length is the world size")
	)
	flag.Parse()

	g, cls, err := loadGraph(*graphFile, *family, int32(*n), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parhip:", err)
		os.Exit(1)
	}
	opt := parhip.Options{
		PEs:     *pes,
		Eps:     *eps,
		Seed:    *seed,
		Workers: *workers,
	}
	var tracer *parhip.Tracer
	if *traceFile != "" {
		tracer = parhip.NewTracer(*pes)
		opt.Trace = tracer
	}
	switch *mode {
	case "fast":
		opt.Mode = parhip.Fast
	case "eco":
		opt.Mode = parhip.Eco
	case "minimal":
		opt.Mode = parhip.Minimal
	default:
		fmt.Fprintf(os.Stderr, "parhip: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	switch *class {
	case "social":
		opt.Class = parhip.Social
	case "mesh":
		opt.Class = parhip.Mesh
	case "auto":
		opt.Class = cls
	default:
		fmt.Fprintf(os.Stderr, "parhip: unknown class %q\n", *class)
		os.Exit(1)
	}

	switch *backend {
	case "inproc":
		if *peersList != "" {
			fmt.Fprintln(os.Stderr, "parhip: -peers requires -transport tcp")
			os.Exit(1)
		}
	case "tcp":
		runTCP(g, opt, *rank, *peersList, *mode, int32(*k), *timeout, *out,
			*baseline || *prevFile != "" || *traceFile != "" || *progress)
		return
	default:
		fmt.Fprintf(os.Stderr, "parhip: unknown transport %q (want inproc or tcp)\n", *backend)
		os.Exit(1)
	}

	var prev *parhip.Partition
	if *prevFile != "" {
		if *baseline {
			fmt.Fprintln(os.Stderr, "parhip: -prev is not supported with -baseline")
			os.Exit(1)
		}
		f, err := os.Open(*prevFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parhip:", err)
			os.Exit(1)
		}
		prev, err = parhip.ReadPartition(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parhip:", err)
			os.Exit(1)
		}
		kSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "k" {
				kSet = true
			}
		})
		if kSet && int32(*k) != prev.K() {
			fmt.Fprintf(os.Stderr, "parhip: -k %d conflicts with -prev partition's k=%d\n", *k, prev.K())
			os.Exit(1)
		}
		*k = int(prev.K())
	}

	fmt.Printf("graph: n=%d m=%d   k=%d  pes=%d  mode=%s\n",
		g.NumNodes(), g.NumEdges(), *k, *pes, *mode)

	// Ctrl-C / SIGTERM cancels the run cooperatively; -timeout bounds it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Track the latest checkpoint so an interrupted run can report how far
	// it got; -progress additionally streams every event.
	var mu sync.Mutex
	var last *parhip.ProgressEvent
	onEvent := func(ev parhip.ProgressEvent) {
		mu.Lock()
		last = &ev
		mu.Unlock()
		if *progress {
			if ev.Cut >= 0 {
				fmt.Fprintf(os.Stderr, "  [%6.2fs] cycle %d/%d %-9s level %-2d n=%-8d cut=%d imb=%.4f\n",
					ev.Elapsed.Seconds(), ev.Cycle+1, ev.Cycles, ev.Phase, ev.Level, ev.N, ev.Cut, ev.Imbalance)
			} else {
				fmt.Fprintf(os.Stderr, "  [%6.2fs] cycle %d/%d %-9s level %-2d n=%-8d m=%d\n",
					ev.Elapsed.Seconds(), ev.Cycle+1, ev.Cycles, ev.Phase, ev.Level, ev.N, ev.M)
			}
		}
	}

	start := time.Now()
	var res parhip.Result
	if *baseline {
		res, err = parhip.PartitionBaselineCtx(ctx, g, int32(*k), opt, 0)
	} else {
		opts := []parhip.Option{parhip.WithK(int32(*k)), parhip.WithOptions(opt),
			parhip.WithProgressFunc(onEvent)}
		if prev != nil {
			opts = append(opts, parhip.WithPrevious(prev))
		}
		var p *parhip.Partitioner
		p, err = parhip.New(g, opts...)
		if err == nil {
			res, err = p.Run(ctx)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "parhip: run cancelled after %.3fs (%v)\n",
				time.Since(start).Seconds(), err)
			mu.Lock()
			if last != nil {
				fmt.Fprintf(os.Stderr, "parhip: partial progress: cycle %d/%d, phase %s, level %d (n=%d)",
					last.Cycle+1, last.Cycles, last.Phase, last.Level, last.N)
				if last.Cut >= 0 {
					fmt.Fprintf(os.Stderr, ", cut=%d imbalance=%.4f", last.Cut, last.Imbalance)
				}
				fmt.Fprintln(os.Stderr)
			} else {
				fmt.Fprintln(os.Stderr, "parhip: cancelled before the first checkpoint")
			}
			mu.Unlock()
			writeTrace(*traceFile, tracer) // partial trace: spans completed before the abort
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "parhip:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("cut=%d  imbalance=%.4f  feasible=%v  commvol=%d  time=%.3fs\n",
		res.Cut, res.Imbalance, res.Feasible,
		res.Partition.CommunicationVolume(g), elapsed.Seconds())
	if prev != nil {
		plan, perr := res.Partition.MigrationPlan(prev)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "parhip: migration plan:", perr)
		} else {
			fmt.Printf("migration: %d/%d nodes moved (%.1f%%), volume %d\n",
				plan.MigratedNodes, plan.TotalNodes, 100*plan.MigratedFraction(), plan.MigrationVolume)
		}
	}
	if c := res.Stats.Comm; c.MessagesSent > 0 {
		fmt.Printf("comm: %d msgs, %d bytes (%d neighbor msgs over %d sparse exchanges)\n",
			c.MessagesSent, c.BytesSent(), c.NeighborMessages, c.NeighborExchanges)
	}
	if len(res.Stats.Levels) > 0 {
		fmt.Print("hierarchy:")
		for _, lv := range res.Stats.Levels {
			fmt.Printf(" %d", lv.N)
		}
		fmt.Println(" nodes")
	}
	if *out != "" {
		if err := writePartition(*out, res.Partition); err != nil {
			fmt.Fprintln(os.Stderr, "parhip:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	writeTrace(*traceFile, tracer)
}

// runTCP is the multi-process launcher path: this process hosts exactly
// one rank of a real networked world instead of simulating every PE
// in-process. Every process of the run must be started with identical
// graph, seed, k, mode and peer-table arguments; the result — printed
// and written only by the rank-0 process — is bit-identical to the
// in-process run with the same seed and configuration.
func runTCP(g *parhip.Graph, opt parhip.Options, rank int, peersList, mode string,
	k int32, timeout time.Duration, out string, unsupported bool) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "parhip:", err)
		os.Exit(1)
	}
	if unsupported {
		fail(errors.New("-baseline, -prev, -trace and -progress are not supported with -transport tcp (use the inproc transport, or parhip-worker -v for transport logs)"))
	}
	peers, err := cluster.ParsePeers(peersList)
	if err != nil {
		fail(err)
	}
	clsName := "social"
	if opt.Class == parhip.Mesh {
		clsName = "mesh"
	}
	coreCfg, err := cluster.CoreConfig(mode, clsName, k, opt.Eps, opt.Seed)
	if err != nil {
		fail(err)
	}
	coreCfg.Workers = opt.Workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	fmt.Printf("graph: n=%d m=%d   k=%d  rank=%d/%d  mode=%s  transport=tcp\n",
		g.NumNodes(), g.NumEdges(), k, rank, len(peers), mode)
	start := time.Now()
	rep, err := cluster.Run(ctx, cluster.Config{
		Rank:  rank,
		Peers: peers,
		Graph: g,
		Core:  coreCfg,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "parhip: run cancelled after %.3fs (%v)\n",
				time.Since(start).Seconds(), err)
			os.Exit(130)
		}
		fail(err)
	}
	elapsed := time.Since(start)
	if !rep.IsRoot {
		fmt.Printf("rank %d done in %.3fs (result reported by rank 0)\n", rank, elapsed.Seconds())
		return
	}
	// Rebuild the first-class Partition value so the report line carries
	// the same fields (including commvol) as the in-process path.
	p, err := parhip.NewPartition(g, rep.Result.Part, k, coreCfg.Eps)
	if err != nil {
		fail(err)
	}
	st := rep.Result.Stats
	fmt.Printf("cut=%d  imbalance=%.4f  feasible=%v  commvol=%d  time=%.3fs\n",
		st.Cut, st.Imbalance, st.Feasible, p.CommunicationVolume(g), elapsed.Seconds())
	ts := rep.Transport
	fmt.Printf("transport: %d frames / %d bytes sent, %d reconnects, %d heartbeat misses\n",
		ts.FramesSent, ts.BytesSent, ts.Reconnects, ts.HeartbeatMisses)
	if out != "" {
		if err := writePartition(out, p); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

// writeTrace serializes the recorded spans as Chrome trace-event JSON.
// No-op when tracing was not requested.
func writeTrace(path string, tracer *parhip.Tracer) {
	if path == "" || tracer == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parhip: trace:", err)
		return
	}
	w := bufio.NewWriter(f)
	err = tracer.WriteJSON(w)
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parhip: trace:", err)
		return
	}
	fmt.Printf("wrote %s (%d spans; open in https://ui.perfetto.dev)\n", path, tracer.SpanCount())
}

func loadGraph(file, family string, n int32, seed uint64) (*parhip.Graph, parhip.GraphClass, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		var g *parhip.Graph
		if strings.HasSuffix(file, ".bgf") || strings.HasSuffix(file, ".bin") {
			g, err = graph.ReadBinary(f)
		} else {
			g, err = parhip.ReadMetis(f)
		}
		return g, parhip.Social, err
	}
	if family == "" {
		return nil, 0, fmt.Errorf("need -graph or -family")
	}
	g, err := gen.ByFamily(gen.Family(family), n, seed)
	if err != nil {
		return nil, 0, err
	}
	cls := parhip.Social
	switch gen.Family(family) {
	case gen.FamilyRGG, gen.FamilyDelaunay, gen.FamilyMesh3D, gen.FamilyGrid:
		cls = parhip.Mesh
	}
	return g, cls, nil
}

// writePartition saves the partition in the versioned text format, or the
// binary format for .bpart files.
func writePartition(path string, p *parhip.Partition) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".bpart") {
		_, err = p.WriteTo(w)
	} else {
		_, err = p.WriteTextTo(w)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}
