// Command parhipd runs the parhip partitioning service: an HTTP daemon
// with an in-memory graph store, an asynchronous job queue served by a
// bounded worker pool, and a fingerprint-keyed LRU result cache.
//
//	parhipd -addr :8090 -workers 8 -cache 256
//
// Observability: every request is logged structured (log/slog: request id,
// method, path, status, duration); Prometheus metrics are served at
// GET /metrics on the main listener; -debug-addr mounts the net/http/pprof
// profiling handlers on a second, normally loopback-only listener, kept off
// the API port so profiling endpoints are never exposed by default:
//
//	parhipd -addr :8090 -debug-addr localhost:8091 -log-format json
//	go tool pprof http://localhost:8091/debug/pprof/profile?seconds=10
//
// See internal/server for the API and README.md for a curl walkthrough;
// cmd/loadgen drives a running daemon with synthetic traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		workers   = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		coreWkrs  = flag.Int("core-workers", 0, "intra-rank threads per core run for superstep compute (0 = library default; results are bit-identical for any value)")
		queueSize = flag.Int("queue", 0, "job queue capacity (0 = 4*workers, min 16)")
		cacheSize = flag.Int("cache", 128, "result cache capacity (entries)")
		maxGraphs = flag.Int("max-graphs", 256, "graph store capacity")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, wait this long for accepted jobs before cancelling them")
	)
	flag.Parse()

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(logHandler)

	srv := server.New(server.Config{
		Workers:     *workers,
		QueueSize:   *queueSize,
		CacheSize:   *cacheSize,
		MaxGraphs:   *maxGraphs,
		CoreWorkers: *coreWkrs,
		Logger:      logger,
	})

	handler := srv.Handler()
	if !*quiet {
		handler = logRequests(logger, handler)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	// Graceful shutdown: SIGINT/SIGTERM first stops the listener (new
	// connections refused, in-flight requests finish), then drains the job
	// queue with the -drain-timeout deadline — past it the remaining jobs
	// are cancelled cooperatively. Either way the daemon exits 0: a drained
	// or deadline-cut shutdown is an orderly one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutdown signal received; stopping listener")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("parhipd listening",
		"addr", *addr, "workers", *workers, "cache", *cacheSize, "graph_store", *maxGraphs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		logger.Error("parhipd exiting", "err", err)
		os.Exit(1)
	}

	logger.Info("draining jobs", "timeout", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain deadline exceeded; remaining jobs cancelled")
	} else {
		logger.Info("all accepted jobs finished")
	}
	logger.Info("parhipd stopped")
}

// serveDebug mounts the pprof handlers on their own mux and listener. A
// fresh mux (not http.DefaultServeMux) keeps the debug surface explicit:
// exactly the five pprof endpoints, nothing registered by side effect.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof debug server listening", "addr", addr)
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("pprof debug server exiting", "err", err)
	}
}

// statusRecorder wraps a ResponseWriter to capture the status code a
// handler wrote, so the access log can carry it (a handler that never
// calls WriteHeader implicitly wrote 200).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// reqSeq numbers requests for log correlation across a daemon's lifetime.
var reqSeq atomic.Int64

func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		id := reqSeq.Add(1)
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", time.Since(start).Round(time.Microsecond),
		)
	})
}
