// Command parhipd runs the parhip partitioning service: an HTTP daemon
// with an in-memory graph store, an asynchronous job queue served by a
// bounded worker pool, and a fingerprint-keyed LRU result cache.
//
//	parhipd -addr :8090 -workers 8 -cache 256
//
// See internal/server for the API and README.md for a curl walkthrough;
// cmd/loadgen drives a running daemon with synthetic traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		workers   = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueSize = flag.Int("queue", 0, "job queue capacity (0 = 4*workers, min 16)")
		cacheSize = flag.Int("cache", 128, "result cache capacity (entries)")
		maxGraphs = flag.Int("max-graphs", 256, "graph store capacity")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:   *workers,
		QueueSize: *queueSize,
		CacheSize: *cacheSize,
		MaxGraphs: *maxGraphs,
	})
	defer srv.Close()

	handler := srv.Handler()
	if !*quiet {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("parhipd listening on %s (%d workers, cache %d, graph store %d)",
		*addr, *workers, *cacheSize, *maxGraphs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("parhipd: %v", err)
	}
	log.Printf("parhipd draining jobs and shutting down")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
