// Command parhip-worker joins one rank of a multi-process ParHIP world
// over TCP. Launch one worker per rank — on one machine or many — with an
// identical graph specification, seed, mode and rank-ordered peer table;
// the workers rendezvous, partition cooperatively, and the rank-0 worker
// prints the result (bit-identical to an in-process run with the same
// seed and configuration). A worker that dies aborts the whole world
// within the heartbeat timeout instead of hanging it.
//
// Example (3 ranks on localhost):
//
//	peers=127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703
//	parhip-worker -rank 0 -peers $peers -family web -n 20000 -k 8 &
//	parhip-worker -rank 1 -peers $peers -family web -n 20000 -k 8 &
//	parhip-worker -rank 2 -peers $peers -family web -n 20000 -k 8
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "rank this worker hosts (0-based; rank 0 reports the result)")
		peersList = flag.String("peers", "", "rank-ordered comma-separated listen addresses (host:port,...)")
		graphFile = flag.String("graph", "", "METIS (or .bgf/.bin binary) graph file, identical on every worker")
		family    = flag.String("family", "", "generated family: rgg, delaunay, rmat, ba, web, mesh3d, grid")
		n         = flag.Int("n", 10000, "node count for generated graphs")
		seed      = flag.Uint64("seed", 1, "random seed (identical on every worker)")
		k         = flag.Int("k", 2, "number of blocks")
		mode      = flag.String("mode", "fast", "fast, eco or minimal")
		class     = flag.String("class", "auto", "graph class: social, mesh or auto")
		eps       = flag.Float64("eps", 0.03, "allowed imbalance")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		hbTimeout = flag.Duration("hb-timeout", 0, "declare a silent peer dead after this long (default 5s)")
		bootWait  = flag.Duration("bootstrap-timeout", 0, "give up the rendezvous after this long (default 30s)")
		out       = flag.String("out", "", "rank 0: write the block assignment to this file (one block per line)")
		workers   = flag.Int("workers", 0, "OS threads for superstep compute (0 = NumCPU; a TCP worker hosts one rank, so it gets the node)")
		verbose   = flag.Bool("v", false, "log transport lifecycle events to stderr")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "parhip-worker:", err)
		os.Exit(1)
	}
	peers, err := cluster.ParsePeers(*peersList)
	if err != nil {
		fail(err)
	}
	if *rank < 0 || *rank >= len(peers) {
		fail(fmt.Errorf("-rank %d outside the %d-entry peer table", *rank, len(peers)))
	}
	g, cls, err := loadGraph(*graphFile, *family, int32(*n), *seed)
	if err != nil {
		fail(err)
	}
	if *class == "auto" {
		*class = cls
	}
	coreCfg, err := cluster.CoreConfig(*mode, *class, int32(*k), *eps, *seed)
	if err != nil {
		fail(err)
	}
	if *workers < 0 {
		fail(fmt.Errorf("-workers %d, must be >= 0 (0 selects the default)", *workers))
	}
	coreCfg.Workers = *workers

	cfg := cluster.Config{
		Rank:             *rank,
		Peers:            peers,
		Graph:            g,
		Core:             coreCfg,
		HeartbeatTimeout: *hbTimeout,
		BootstrapTimeout: *bootWait,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Fprintf(os.Stderr, "parhip-worker: rank %d/%d joining %s (n=%d m=%d k=%d mode=%s)\n",
		*rank, len(peers), peers[*rank], g.NumNodes(), g.NumEdges(), *k, *mode)
	start := time.Now()
	rep, err := cluster.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "parhip-worker: rank %d cancelled after %.3fs\n",
				*rank, time.Since(start).Seconds())
			os.Exit(130)
		}
		fail(err)
	}
	ts := rep.Transport
	fmt.Fprintf(os.Stderr, "parhip-worker: rank %d done in %.3fs (%d frames / %d bytes sent, %d reconnects)\n",
		*rank, time.Since(start).Seconds(), ts.FramesSent, ts.BytesSent, ts.Reconnects)
	if !rep.IsRoot {
		return
	}
	st := rep.Result.Stats
	fmt.Printf("cut=%d  imbalance=%.4f  feasible=%v  time=%.3fs\n",
		st.Cut, st.Imbalance, st.Feasible, time.Since(start).Seconds())
	if *out != "" {
		if err := writeAssignment(*out, rep.Result.Part); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// loadGraph mirrors cmd/parhip's input handling: a graph file or a
// deterministic generated family (identical across workers for a given
// seed). The second result is the auto-detected class name.
func loadGraph(file, family string, n int32, seed uint64) (*graph.Graph, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		var g *graph.Graph
		if strings.HasSuffix(file, ".bgf") || strings.HasSuffix(file, ".bin") {
			g, err = graph.ReadBinary(f)
		} else {
			g, err = graph.ReadMetis(f)
		}
		return g, "social", err
	}
	if family == "" {
		return nil, "", fmt.Errorf("need -graph or -family")
	}
	g, err := gen.ByFamily(gen.Family(family), n, seed)
	if err != nil {
		return nil, "", err
	}
	cls := "social"
	switch gen.Family(family) {
	case gen.FamilyRGG, gen.FamilyDelaunay, gen.FamilyMesh3D, gen.FamilyGrid:
		cls = "mesh"
	}
	return g, cls, nil
}

// writeAssignment saves the raw block-per-line assignment (the legacy
// interchange format every partition tool reads).
func writeAssignment(path string, part []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, b := range part {
		if _, err := fmt.Fprintln(w, b); err != nil {
			return err
		}
	}
	return w.Flush()
}
