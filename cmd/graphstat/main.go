// Command graphstat reports structural statistics of a graph: size, degree
// distribution, connectivity, and (optionally) a modularity clustering —
// the quantities that predict whether matching-based or cluster-based
// coarsening will work on it.
//
//	graphstat -graph web.metis
//	graphstat -family rmat -n 100000 -cluster
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/modularity"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "METIS graph file")
		family    = flag.String("family", "", "generated family (see graphgen)")
		n         = flag.Int("n", 10000, "node count for generated graphs")
		seed      = flag.Uint64("seed", 1, "random seed")
		cluster   = flag.Bool("cluster", false, "also run modularity clustering")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *graphFile != "":
		f, ferr := os.Open(*graphFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "graphstat:", ferr)
			os.Exit(1)
		}
		g, err = graph.ReadMetis(f)
		f.Close()
	case *family != "":
		g, err = gen.ByFamily(gen.Family(*family), int32(*n), *seed)
	default:
		fmt.Fprintln(os.Stderr, "graphstat: need -graph or -family")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphstat:", err)
		os.Exit(1)
	}

	nn := g.NumNodes()
	fmt.Printf("n=%d m=%d totalNodeWeight=%d totalEdgeWeight=%d\n",
		nn, g.NumEdges(), g.TotalNodeWeight(), g.TotalEdgeWeight())

	degs := make([]int, nn)
	for v := int32(0); v < nn; v++ {
		degs[v] = int(g.Degree(v))
	}
	sort.Ints(degs)
	pct := func(p float64) int { return degs[int(float64(nn-1)*p)] }
	avg := float64(2*g.NumEdges()) / float64(nn)
	fmt.Printf("degree: min=%d p50=%d p90=%d p99=%d max=%d avg=%.2f\n",
		degs[0], pct(0.5), pct(0.9), pct(0.99), degs[nn-1], avg)
	// Heavy-tail indicator: max/median ratio.
	med := pct(0.5)
	if med > 0 {
		ratio := float64(degs[nn-1]) / float64(med)
		kind := "mesh-like (use -class mesh)"
		if ratio > 20 {
			kind = "complex network (use -class social)"
		}
		fmt.Printf("max/median degree = %.1f -> %s\n", ratio, kind)
	}

	comp, cnt := graph.ConnectedComponents(g)
	sizes := make(map[int32]int64)
	for _, c := range comp {
		sizes[c]++
	}
	var giant int64
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	fmt.Printf("components=%d giant=%d (%.1f%%)\n", cnt, giant, 100*float64(giant)/float64(nn))

	if *cluster {
		clusters, q := modularity.Cluster(g, modularity.DefaultConfig())
		distinct := make(map[int32]bool)
		for _, c := range clusters {
			distinct[c] = true
		}
		fmt.Printf("modularity clustering: Q=%.4f clusters=%d\n", q, len(distinct))
	}
}
