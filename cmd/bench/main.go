// Command bench regenerates the paper's tables and figures at reduced
// scale (see DESIGN.md §4 for the experiment index).
//
//	bench -table1          benchmark-set properties (Table I analogue)
//	bench -table2          k=2 quality/time comparison (Table II)
//	bench -table3          k=32 quality/time comparison (Table III)
//	bench -fig5            weak scaling on rgg/delaunay (Figure 5)
//	bench -fig6            strong scaling incl. web instance (Figure 6)
//	bench -shrink          coarsening effectiveness (§V-B observation)
//	bench -repart          repartitioning under edge churn (cold vs warm
//	                       cut, migration volume)
//	bench -all             everything
//
// Flags -scale, -pes, -reps tune the workload size. -json switches the
// output to a single machine-readable JSON document (cut, imbalance and
// seconds per instance/algorithm) for recording the perf trajectory across
// PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/exp"
	"repro/internal/gen"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print benchmark-set properties (Table I)")
		table2   = flag.Bool("table2", false, "run the k=2 comparison (Table II)")
		table3   = flag.Bool("table3", false, "run the k=32 comparison (Table III)")
		fig5     = flag.Bool("fig5", false, "run the weak-scaling experiment (Figure 5)")
		fig6     = flag.Bool("fig6", false, "run the strong-scaling experiment (Figure 6)")
		shrink   = flag.Bool("shrink", false, "run the coarsening-effectiveness experiment")
		repart   = flag.Bool("repart", false, "run the repartitioning-under-churn experiment")
		all      = flag.Bool("all", false, "run everything")
		scale    = flag.Int("scale", 1, "instance size multiplier")
		pes      = flag.Int("pes", 4, "simulated PEs for the tables")
		reps     = flag.Int("reps", 3, "repetitions per configuration")
		maxP     = flag.Int("maxp", maxPdefault(), "largest PE count for scaling runs")
		jsonMode = flag.Bool("json", false, "emit one machine-readable JSON document instead of text tables")
	)
	flag.Parse()
	if !(*table1 || *table2 || *table3 || *fig5 || *fig6 || *shrink || *repart || *all) {
		flag.Usage()
		os.Exit(2)
	}
	w := os.Stdout
	var report exp.JSONReport

	if *all || *table1 {
		if !*jsonMode {
			fmt.Fprintln(w, "Table I (analogue): benchmark set properties")
			fmt.Fprintf(w, "%-12s %-4s %9s %10s\n", "graph", "type", "n", "m")
		}
		for _, inst := range exp.BenchmarkSet(int32(*scale)) {
			g := inst.Gen(42)
			if *jsonMode {
				report.Properties = append(report.Properties, exp.GraphProps{
					Graph: inst.Name, Type: inst.Type, N: g.NumNodes(), M: g.NumEdges(),
				})
			} else {
				fmt.Fprintf(w, "%-12s %-4s %9d %10d\n", inst.Name, inst.Type, g.NumNodes(), g.NumEdges())
			}
		}
		if !*jsonMode {
			fmt.Fprintln(w)
		}
	}
	if *all || *table2 {
		rows := exp.RunTable(exp.TableOptions{K: 2, PEs: *pes, Reps: *reps, Scale: int32(*scale), BudgetDivisor: 6})
		if *jsonMode {
			report.Records = append(report.Records, exp.Records("table2", 2, *pes, rows)...)
		} else {
			exp.WriteTable(w, "Table II (analogue): k=2, avg/best cut and time", rows)
			fmt.Fprintln(w)
		}
	}
	if *all || *table3 {
		rows := exp.RunTable(exp.TableOptions{K: 32, PEs: *pes, Reps: *reps, Scale: int32(*scale), BudgetDivisor: 6})
		if *jsonMode {
			report.Records = append(report.Records, exp.Records("table3", 32, *pes, rows)...)
		} else {
			exp.WriteTable(w, "Table III (analogue): k=32, avg/best cut and time", rows)
			fmt.Fprintln(w)
		}
	}
	if *all || *fig5 {
		pts := exp.RunWeakScaling(peList(*maxP), int32(4096**scale), 16, 1)
		if *jsonMode {
			report.Weak = exp.WeakRecords(pts)
		} else {
			exp.WriteWeakScaling(w, pts)
			fmt.Fprintln(w)
		}
	}
	if *all || *fig6 {
		insts := exp.DefaultStrongInstances(int32(*scale))
		pts := exp.RunStrongScaling(insts, peList(*maxP), 16, 1)
		if *jsonMode {
			report.Strong = exp.StrongRecords(pts)
		} else {
			exp.WriteStrongScaling(w, pts)
			fmt.Fprintln(w)
		}
	}
	if *all || *shrink {
		web, _ := gen.PlantedPartition(int32(20000**scale), 100, 10, 0.4, 1)
		mesh := gen.DelaunayLike(int32(16000**scale), 1)
		shrinkReps := []exp.ShrinkReport{
			exp.RunShrink("web-comm", web, *pes, 300, 1),
			exp.RunShrink("delaunay", mesh, *pes, 300, 1),
		}
		if *jsonMode {
			report.Shrink = exp.ShrinkRecords(shrinkReps)
		} else {
			exp.WriteShrink(w, shrinkReps)
		}
	}
	if *all || *repart {
		pts := exp.RunRepartition(exp.RepartOptions{K: 16, PEs: *pes, Scale: int32(*scale)})
		if *jsonMode {
			report.Repart = exp.RepartRecords(pts)
		} else {
			exp.WriteRepartition(w, pts)
		}
	}
	if *jsonMode {
		if err := exp.WriteJSON(w, report); err != nil {
			log.Fatalf("bench: write json: %v", err)
		}
	}
}

func maxPdefault() int {
	p := runtime.NumCPU()
	if p > 8 {
		p = 8
	}
	if p < 2 {
		p = 2
	}
	return p
}

func peList(maxP int) []int {
	var out []int
	for p := 1; p <= maxP; p *= 2 {
		out = append(out, p)
	}
	return out
}
