package parhip_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
)

// randomPartition builds a valid random Partition over g.
func randomPartition(t *testing.T, g *parhip.Graph, k int32, eps float64, rnd *rand.Rand) *parhip.Partition {
	t.Helper()
	assign := make([]int32, g.NumNodes())
	for i := range assign {
		assign[i] = rnd.Int31n(k)
	}
	p, err := parhip.NewPartition(g, assign, k, eps)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	return p
}

// TestPartitionSerializationRoundTrip is the property test over both
// formats: write → read → write must be bit-identical, and the decoded
// value must agree with the original on every accessor.
func TestPartitionSerializationRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		n := int32(2 + rnd.Intn(400))
		g := gen.DelaunayLike(n, uint64(iter+1))
		n = g.NumNodes()
		k := int32(1 + rnd.Intn(int(min32(n, 9))))
		eps := []float64{0.03, 0.1, 0.29, 1.5}[rnd.Intn(4)]
		p := randomPartition(t, g, k, eps, rnd)

		for _, format := range []string{"binary", "text"} {
			var first bytes.Buffer
			var err error
			if format == "binary" {
				_, err = p.WriteTo(&first)
			} else {
				_, err = p.WriteTextTo(&first)
			}
			if err != nil {
				t.Fatalf("%s write: %v", format, err)
			}
			q, err := parhip.ReadPartition(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("%s read: %v", format, err)
			}
			var second bytes.Buffer
			if format == "binary" {
				_, err = q.WriteTo(&second)
			} else {
				_, err = q.WriteTextTo(&second)
			}
			if err != nil {
				t.Fatalf("%s rewrite: %v", format, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("%s round trip not bit-identical (iter %d: n=%d k=%d eps=%g)",
					format, iter, n, k, eps)
			}
			if q.K() != p.K() || q.Eps() != p.Eps() || q.NumNodes() != p.NumNodes() ||
				q.Cut() != p.Cut() || q.Feasible() != p.Feasible() ||
				q.GraphFingerprint() != p.GraphFingerprint() ||
				q.Checksum() != p.Checksum() {
				t.Fatalf("%s round trip changed the value (iter %d)", format, iter)
			}
			for v := int32(0); v < q.NumNodes(); v++ {
				if q.Block(v) != p.Block(v) {
					t.Fatalf("%s round trip changed node %d's block", format, v)
				}
			}
			// The decoded partition must Validate against its own graph and
			// come out fully re-derived.
			if err := q.Validate(g); err != nil {
				t.Fatalf("%s: Validate after read: %v", format, err)
			}
			if q.Boundary() == nil && p.Cut() > 0 {
				t.Fatalf("%s: no boundary after Validate despite positive cut", format)
			}
		}
	}
}

// TestReadPartitionCrossFormat checks the sniffer: binary and text bytes of
// the same value decode to the same partition, and a legacy block-per-line
// body decodes with inferred k.
func TestReadPartitionCrossFormat(t *testing.T) {
	g := gen.DelaunayLike(200, 3)
	p := randomPartition(t, g, 5, 0.03, rand.New(rand.NewSource(7)))

	var bin, txt bytes.Buffer
	if _, err := p.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteTextTo(&txt); err != nil {
		t.Fatal(err)
	}
	pb, err := parhip.ReadPartition(&bin)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := parhip.ReadPartition(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Checksum() != pt.Checksum() {
		t.Fatal("binary and text decode to different partitions")
	}

	legacy := "0\n2\n1\n2\n0\n"
	pl, err := parhip.ReadPartition(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if pl.K() != 3 || pl.NumNodes() != 5 {
		t.Fatalf("legacy decode: k=%d n=%d, want k=3 n=5", pl.K(), pl.NumNodes())
	}
	if pl.Cut() != -1 {
		t.Fatalf("legacy decode invented a cut: %d", pl.Cut())
	}

	// ReadFrom (io.ReaderFrom form) matches ReadPartition.
	var q parhip.Partition
	var txt2 bytes.Buffer
	if _, err := p.WriteTextTo(&txt2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.ReadFrom(&txt2); err != nil {
		t.Fatal(err)
	}
	if q.Checksum() != p.Checksum() {
		t.Fatal("ReadFrom decoded a different partition")
	}
}

// TestPartitionValidateRejections covers the strict Validate contract:
// wrong length, out-of-range blocks and fingerprint mismatches all fail.
func TestPartitionValidateRejections(t *testing.T) {
	g := gen.DelaunayLike(300, 4)
	p := randomPartition(t, g, 4, 0.03, rand.New(rand.NewSource(9)))

	// Wrong node count.
	small := gen.DelaunayLike(100, 4)
	if err := p.Validate(small); err == nil {
		t.Error("Validate accepted a graph with a different node count")
	}
	// Fingerprint mismatch: same node count, different edges.
	churned := gen.Perturb(g, 0.2, 5)
	if err := p.Validate(churned); err == nil {
		t.Error("Validate accepted a fingerprint-mismatched graph")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch error does not say so: %v", err)
	}
	// The matching graph passes.
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate rejected the source graph: %v", err)
	}

	// Out-of-range blocks: force them through the text format (NewPartition
	// refuses to construct such a partition directly).
	bad := textPartition(t, "%% parhip-partition v1\n% k 2\n0\n1\n5\n")
	if bad != nil {
		t.Error("decoder accepted a block outside [0, k)")
	}

	// NewPartition boundary validation.
	if _, err := parhip.NewPartition(g, make([]int32, 5), 4, 0.03); err == nil {
		t.Error("NewPartition accepted a wrong-length assignment")
	}
	assign := make([]int32, g.NumNodes())
	assign[0] = 4
	if _, err := parhip.NewPartition(g, assign, 4, 0.03); err == nil {
		t.Error("NewPartition accepted an out-of-range block")
	}
	if _, err := parhip.NewPartition(nil, assign, 4, 0.03); err == nil {
		t.Error("NewPartition accepted a nil graph")
	}
}

func textPartition(t *testing.T, body string) *parhip.Partition {
	t.Helper()
	p, err := parhip.ReadPartition(strings.NewReader(body))
	if err != nil {
		return nil
	}
	return p
}

// TestPartitionTruncatedBinary fuzzes truncation: every prefix of a valid
// binary encoding must fail to decode (no panics, no silent success).
func TestPartitionTruncatedBinary(t *testing.T) {
	g := gen.DelaunayLike(64, 6)
	p := randomPartition(t, g, 3, 0.03, rand.New(rand.NewSource(11)))
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := parhip.ReadPartition(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated binary partition (%d/%d bytes) decoded without error", cut, len(full))
		}
	}
}

// TestMigrationPlan covers the diff math, including weighted volume.
func TestMigrationPlan(t *testing.T) {
	b := parhip.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	g.NW[2] = 10 // weighted node

	prev, err := parhip.NewPartition(g, []int32{0, 0, 1, 1}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	next, err := parhip.NewPartition(g, []int32{0, 1, 0, 1}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := next.MigrationPlan(prev)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MigratedNodes != 2 || plan.TotalNodes != 4 {
		t.Fatalf("plan: %+v", plan)
	}
	if plan.MigrationVolume != 1+10 {
		t.Fatalf("volume = %d, want 11 (node 1 weight 1 + node 2 weight 10)", plan.MigrationVolume)
	}
	want := []parhip.Move{{Node: 1, From: 0, To: 1}, {Node: 2, From: 1, To: 0}}
	for i, m := range plan.Moves {
		if m != want[i] {
			t.Fatalf("move %d = %+v, want %+v", i, m, want[i])
		}
	}
	if _, err := next.MigrationPlan(nil); err == nil {
		t.Error("MigrationPlan accepted a nil previous partition")
	}
}

// TestMigrationPlanEdgeCases pins down the plan's boundary behavior:
// identical partitions diff to an empty plan, a k-change is a legitimate
// repartitioning (every resident of removed blocks moves), mismatched
// node counts are rejected, and cross-graph use is caught by Validate's
// fingerprint check (MigrationPlan itself only compares assignments).
func TestMigrationPlanEdgeCases(t *testing.T) {
	g := gen.DelaunayLike(64, 6)
	r := rand.New(rand.NewSource(17))
	p := randomPartition(t, g, 4, 0.2, r)

	// Identical partitions: zero moves, zero volume, full node count.
	assign := make([]int32, g.NumNodes())
	for v := range assign {
		assign[v] = p.Block(int32(v))
	}
	same, err := parhip.NewPartition(g, assign, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := same.MigrationPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MigratedNodes != 0 || plan.MigrationVolume != 0 || len(plan.Moves) != 0 {
		t.Fatalf("identical partitions produced a non-empty plan: %+v", plan)
	}
	if plan.TotalNodes != g.NumNodes() || plan.MigratedFraction() != 0 {
		t.Fatalf("empty plan totals wrong: %+v", plan)
	}

	// Repartitioning to a different k: blocks 4..7 are new, and the diff
	// must count exactly the nodes whose block changed.
	wider := make([]int32, g.NumNodes())
	changed := int64(0)
	for v := range wider {
		wider[v] = int32(v) % 8
		if wider[v] != p.Block(int32(v)) {
			changed++
		}
	}
	p8, err := parhip.NewPartition(g, wider, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = p8.MigrationPlan(p)
	if err != nil {
		t.Fatalf("k-change plan: %v", err)
	}
	if plan.MigratedNodes != changed {
		t.Fatalf("k-change plan counts %d moves, want %d", plan.MigratedNodes, changed)
	}
	for _, m := range plan.Moves {
		if m.From == m.To {
			t.Fatalf("plan lists a non-move: %+v", m)
		}
	}

	// Node-count mismatch is an error, both ways.
	small := gen.DelaunayLike(32, 6)
	ps := randomPartition(t, small, 4, 0.2, r)
	if _, err := p.MigrationPlan(ps); err == nil {
		t.Error("MigrationPlan accepted a smaller previous partition")
	}
	if _, err := ps.MigrationPlan(p); err == nil {
		t.Error("MigrationPlan accepted a larger previous partition")
	}

	// Same node count, different graph: MigrationPlan has no fingerprint
	// of its own, but Validate refuses to bind the partition to the other
	// graph, which is the documented guard for cross-graph confusion.
	other := gen.DelaunayLike(64, 7)
	if other.Fingerprint() == g.Fingerprint() {
		t.Fatal("test graphs unexpectedly identical")
	}
	if err := p.Validate(other); err == nil {
		t.Error("Validate bound a partition to a graph with a different fingerprint")
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// TestPartitionDecoderHardening covers the corrupt-input guards: a huge
// node-count field must error (not panic), NaN/out-of-range eps is
// rejected in both formats, and an unbound partition survives a binary
// round trip without fabricating derived stats.
func TestPartitionDecoderHardening(t *testing.T) {
	g := gen.DelaunayLike(64, 6)
	p := randomPartition(t, g, 3, 0.03, rand.New(rand.NewSource(13)))
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// The node count is the 8 bytes before the assignment (64 * 4 bytes).
	corrupt := append([]byte(nil), full...)
	nOff := len(corrupt) - 64*4 - 8
	for i := 0; i < 8; i++ {
		corrupt[nOff+i] = 0xff
	}
	if _, err := parhip.ReadPartition(bytes.NewReader(corrupt)); err == nil {
		t.Error("decoder accepted an absurd node count")
	}

	// NaN eps, both formats.
	nan := append([]byte(nil), full...)
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f} { // little-endian float64 NaN
		nan[16+i] = b // magic(8) + version(4) + k(4) = offset 16
	}
	if _, err := parhip.ReadPartition(bytes.NewReader(nan)); err == nil {
		t.Error("binary decoder accepted NaN eps")
	}
	if q := textPartition(t, "%% parhip-partition v1\n% k 2\n% eps NaN\n0\n1\n"); q != nil {
		t.Error("text decoder accepted NaN eps")
	}
	if q := textPartition(t, "%% parhip-partition v1\n% k 2\n% eps 1e6\n0\n1\n"); q != nil {
		t.Error("text decoder accepted eps > MaxEps")
	}

	// An unbound (legacy) partition keeps Cut() == -1 through the binary
	// format instead of resurfacing as a fake cut of 0.
	legacy := textPartition(t, "0\n1\n0\n1\n")
	if legacy == nil || legacy.Cut() != -1 {
		t.Fatalf("legacy decode: %+v", legacy)
	}
	var bin bytes.Buffer
	if _, err := legacy.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	back, err := parhip.ReadPartition(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cut() != -1 || back.Feasible() {
		t.Errorf("unbound partition gained fabricated derived stats: cut=%d feasible=%v",
			back.Cut(), back.Feasible())
	}
}
