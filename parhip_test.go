package parhip

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

func TestPartitionPublicAPI(t *testing.T) {
	g, _ := gen.PlantedPartition(3000, 20, 10, 0.5, 1)
	res, err := PartitionGraph(g, 4, Options{PEs: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Part) != int(g.NumNodes()) {
		t.Fatalf("partition length %d", len(res.Part))
	}
	if !res.Feasible {
		t.Fatalf("infeasible: imbalance %.4f", res.Imbalance)
	}
	if res.Cut != EdgeCut(g, res.Part) {
		t.Fatalf("reported cut %d != recomputed %d", res.Cut, EdgeCut(g, res.Part))
	}
	if !IsFeasible(g, res.Part, 4, 0.03) {
		t.Fatal("IsFeasible disagrees with Feasible")
	}
}

func TestPartitionModes(t *testing.T) {
	g, _ := gen.PlantedPartition(1500, 12, 9, 0.5, 2)
	for _, m := range []Mode{Fast, Eco, Minimal} {
		res, err := PartitionGraph(g, 2, Options{PEs: 2, Mode: m, Seed: 1})
		if err != nil {
			t.Fatalf("mode %d: %v", m, err)
		}
		if !res.Feasible {
			t.Errorf("mode %d infeasible", m)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := PartitionGraph(nil, 2, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := NewBuilder(4)
	g.AddEdge(0, 1)
	if _, err := PartitionGraph(g.Build(), 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PartitionBaseline(nil, 2, Options{}, 0); err == nil {
		t.Fatal("nil graph accepted by baseline")
	}
	if _, err := PartitionBaseline(Star(5), 0, Options{}, 0); err == nil {
		t.Fatal("k=0 accepted by baseline")
	}
}

// Star builds a small star graph for the error tests.
func Star(n int32) *Graph {
	b := NewBuilder(n)
	for v := int32(1); v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

func TestBaselinePublicAPI(t *testing.T) {
	g := gen.DelaunayLike(2000, 3)
	res, err := PartitionBaseline(g, 2, Options{PEs: 2, Class: Mesh, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("baseline infeasible: %.4f", res.Imbalance)
	}
}

// TestBaselineStatsDetail locks in that the baseline's Result carries the
// same Stats detail as the main partitioner — hierarchy levels with node
// AND edge counts, phase timings, the balance bound — so bench comparisons
// are apples-to-apples (not just Cut/Imbalance/Feasible).
func TestBaselineStatsDetail(t *testing.T) {
	g := gen.DelaunayLike(3000, 5)
	res, err := PartitionBaseline(g, 4, Options{PEs: 2, Class: Mesh, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if len(st.Levels) < 2 {
		t.Fatalf("baseline stats carry %d hierarchy levels, want >= 2", len(st.Levels))
	}
	if st.Levels[0].N != int64(g.NumNodes()) || st.Levels[0].M != g.NumEdges() {
		t.Errorf("finest level = %+v, want n=%d m=%d", st.Levels[0], g.NumNodes(), g.NumEdges())
	}
	for i := 1; i < len(st.Levels); i++ {
		if st.Levels[i].N >= st.Levels[i-1].N || st.Levels[i].M <= 0 {
			t.Errorf("level %d not coarser or missing edges: %+v", i, st.Levels)
		}
	}
	if st.TotalTime <= 0 || st.CoarsenTime <= 0 || st.InitTime <= 0 || st.RefineTime <= 0 {
		t.Errorf("missing phase timings: %+v", st)
	}
	if st.Lmax <= 0 || st.MaxBlockWeight <= 0 || st.MaxBlockWeight > st.Lmax {
		t.Errorf("balance bound fields inconsistent: Lmax=%d MaxBlockWeight=%d", st.Lmax, st.MaxBlockWeight)
	}
	if st.Cut != res.Cut {
		t.Errorf("Stats.Cut %d != Result.Cut %d", st.Cut, res.Cut)
	}
	if res.Partition == nil || res.Partition.Cut() != res.Cut {
		t.Error("baseline result lacks a consistent Partition value")
	}
}

func TestMetisRoundTripPublic(t *testing.T) {
	g := gen.RGG(300, 4)
	var buf bytes.Buffer
	if err := WriteMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestMetricsExports(t *testing.T) {
	g := NewBuilder(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	gg := g.Build()
	p := []int32{0, 0, 1, 1}
	if EdgeCut(gg, p) != 1 {
		t.Fatal("EdgeCut wrong")
	}
	if CommunicationVolume(gg, p, 2) != 2 {
		t.Fatal("CommunicationVolume wrong")
	}
	if Imbalance(gg, p, 2) != 0 {
		t.Fatal("Imbalance wrong")
	}
}

func TestPartitionWithObjective(t *testing.T) {
	g, _ := gen.PlantedPartition(1200, 10, 9, 0.5, 7)
	res, err := PartitionGraph(g, 4, Options{PEs: 2, Seed: 3, Objective: MinimizeCommVolume})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible under comm-volume objective")
	}
}

func TestClusterModularityPublic(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 10, 10, 0.5, 3)
	clusters, q := ClusterModularity(g, 1)
	if len(clusters) != int(g.NumNodes()) {
		t.Fatal("wrong clustering length")
	}
	if q < 0.3 {
		t.Fatalf("modularity %v too low", q)
	}
	if got := Modularity(g, clusters); got != q {
		t.Fatalf("Modularity() = %v, Cluster reported %v", got, q)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.pes() != 4 {
		t.Fatalf("default PEs %d", o.pes())
	}
	cfg := o.coreConfig(2)
	if cfg.VCycles != 2 {
		t.Fatalf("default mode should be Fast (2 V-cycles), got %d", cfg.VCycles)
	}
	o.Mode = Eco
	if o.coreConfig(2).VCycles != 5 {
		t.Fatal("Eco should map to 5 V-cycles")
	}
	o.Mode = Minimal
	if o.coreConfig(2).VCycles != 1 {
		t.Fatal("Minimal should map to 1 V-cycle")
	}
}

func TestFingerprintReexport(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	fp := Fingerprint(g)
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q not 64 hex chars", fp)
	}
	if fp != Fingerprint(g.Clone()) {
		t.Fatal("clone fingerprint differs")
	}
	b2 := NewBuilder(3)
	b2.AddEdge(0, 1)
	if Fingerprint(b2.Build()) == fp {
		t.Fatal("different graphs share a fingerprint")
	}
}
