// Benchmarks regenerating the paper's tables and figures (see DESIGN.md §4
// for the experiment index, and EXPERIMENTS.md for recorded results).
//
// Each benchmark reports the edge cut of the produced partition via
// b.ReportMetric (unit "cut") next to the usual ns/op, so a -bench run
// yields both columns of the paper's tables: quality and time.
package parhip

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/evo"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kaffpa"
	"repro/internal/matchbase"
	"repro/internal/modularity"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/sclp"
)

// benchPEs is the simulated PE count for table benchmarks (the paper uses
// 32 PEs of machine A; goroutine ranks beyond the core count add no
// speed, so a laptop-friendly count is used).
const benchPEs = 4

// --- Table I: benchmark set properties -----------------------------------

func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, inst := range exp.BenchmarkSet(1) {
			g := inst.Gen(42)
			if g.NumNodes() == 0 {
				b.Fatal("empty instance")
			}
		}
	}
}

// --- Tables II and III: cut and time per instance and algorithm ----------

func benchTable(b *testing.B, k int32) {
	for _, inst := range exp.BenchmarkSet(1) {
		g := inst.Gen(42)
		// Per-PE memory budget n/6 nodes, floored at twice the coarsening
		// target so the baseline is never failed merely for stopping at
		// its own coarsest-size limit (matches exp.RunTable).
		budget := int64(g.NumNodes()) / 6
		if floor := 2 * matchbase.DefaultConfig(k).CoarsestPerBlock * int64(k); budget < floor {
			budget = floor
		}
		b.Run(inst.Name+"/baseline", func(b *testing.B) {
			var cut int64
			failed := false
			for i := 0; i < b.N; i++ {
				cfg := matchbase.DefaultConfig(k)
				cfg.Seed = uint64(i + 1)
				cfg.MemoryBudgetNodes = budget
				res, err := matchbase.Run(benchPEs, g, cfg)
				if err != nil {
					failed = true // the paper's "*" entries
					continue
				}
				cut = res.Stats.Cut
			}
			if failed {
				b.ReportMetric(-1, "cut") // -1 marks a memory-budget failure
			} else {
				b.ReportMetric(float64(cut), "cut")
			}
		})
		b.Run(inst.Name+"/fast", func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(k, inst.Class)
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
		b.Run(inst.Name+"/eco", func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.EcoConfig(k, inst.Class)
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

func BenchmarkTable2K2(b *testing.B)  { benchTable(b, 2) }
func BenchmarkTable3K32(b *testing.B) { benchTable(b, 32) }

// --- Figure 5: weak scaling ----------------------------------------------

func BenchmarkFig5Weak(b *testing.B) {
	for _, fam := range []string{"rgg", "delaunay"} {
		for _, p := range []int{1, 2, 4} {
			n := int32(4096 * p)
			var g *graph.Graph
			if fam == "rgg" {
				g = gen.RGG(n, 1)
			} else {
				g = gen.DelaunayLike(n, 1)
			}
			for _, algo := range []string{"fast", "baseline"} {
				name := fmt.Sprintf("%s/p=%d/%s", fam, p, algo)
				b.Run(name, func(b *testing.B) {
					var cut int64
					for i := 0; i < b.N; i++ {
						if algo == "fast" {
							cfg := core.FastConfig(16, core.ClassMesh)
							cfg.Seed = uint64(i + 1)
							res, err := core.Run(p, g, cfg)
							if err != nil {
								b.Fatal(err)
							}
							cut = res.Stats.Cut
						} else {
							cfg := matchbase.DefaultConfig(16)
							cfg.Seed = uint64(i + 1)
							res, err := matchbase.Run(p, g, cfg)
							if err != nil {
								b.Fatal(err)
							}
							cut = res.Stats.Cut
						}
					}
					b.ReportMetric(float64(cut), "cut")
					b.ReportMetric(float64(g.NumEdges()), "edges")
				})
			}
		}
	}
}

// --- Figure 6: strong scaling --------------------------------------------

func BenchmarkFig6StrongDel(b *testing.B) { benchStrong(b, "del") }
func BenchmarkFig6StrongRgg(b *testing.B) { benchStrong(b, "rgg") }
func BenchmarkFig6StrongWeb(b *testing.B) { benchStrong(b, "web") }

func benchStrong(b *testing.B, which string) {
	insts := exp.DefaultStrongInstances(1)
	var inst exp.StrongInstance
	found := false
	for _, in := range insts {
		if in.Name == which {
			inst, found = in, true
		}
	}
	if !found {
		b.Fatalf("no instance %q", which)
	}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("fast/p=%d", p), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(16, inst.Class)
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(p, inst.G, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
	// Baseline datapoint (fails on the web instance under its budget, as
	// ParMETIS does in the paper).
	b.Run("baseline/p=4", func(b *testing.B) {
		var cut int64
		failed := false
		for i := 0; i < b.N; i++ {
			cfg := matchbase.DefaultConfig(16)
			cfg.Seed = uint64(i + 1)
			if inst.BudgetDivisor > 0 {
				cfg.MemoryBudgetNodes = int64(inst.G.NumNodes()) / inst.BudgetDivisor
			}
			res, err := matchbase.Run(4, inst.G, cfg)
			if err != nil {
				failed = true
				continue
			}
			cut = res.Stats.Cut
		}
		if failed {
			b.ReportMetric(-1, "cut")
		} else {
			b.ReportMetric(float64(cut), "cut")
		}
	})
	if which == "web" {
		// The paper's minimal variant on the largest web graph.
		b.Run("minimal/p=4", func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.MinimalConfig(16, inst.Class)
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(4, inst.G, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// --- §V-B: coarsening effectiveness --------------------------------------

func BenchmarkCoarseningShrink(b *testing.B) {
	web, _ := gen.PlantedPartition(12000, 80, 10, 0.4, 1)
	b.Run("cluster-contraction", func(b *testing.B) {
		var shrink float64
		for i := 0; i < b.N; i++ {
			rep := exp.RunShrink("web", web, benchPEs, 300, uint64(i+1))
			if len(rep.ClusterLevels) >= 2 {
				shrink = float64(rep.ClusterLevels[0]) / float64(rep.ClusterLevels[1])
			}
		}
		b.ReportMetric(shrink, "first-shrink-x")
	})
}

// --- Ablations (design choices called out in DESIGN.md §4) ----------------

// BenchmarkAblationNodeOrder compares ascending-degree vs random traversal
// in the coarsening label propagation (§III-A claims degree ordering
// improves quality and speed).
func BenchmarkAblationNodeOrder(b *testing.B) {
	g, _ := gen.PlantedPartition(10000, 60, 10, 0.5, 2)
	for _, degree := range []bool{true, false} {
		name := "random"
		if degree {
			name = "degree"
		}
		b.Run(name, func(b *testing.B) {
			var clusters int
			for i := 0; i < b.N; i++ {
				labels := sclp.Cluster(g, sclp.ClusterConfig{
					U: 300, Iterations: 3, DegreeOrder: degree, Seed: uint64(i + 1),
				})
				distinct := make(map[int32]bool)
				for _, l := range labels {
					distinct[l] = true
				}
				clusters = len(distinct)
			}
			b.ReportMetric(float64(clusters), "clusters")
		})
	}
}

// BenchmarkAblationSizeFactor compares the coarsening size factor f = 14
// (social default) against f = 20000 (mesh default) on a social graph.
func BenchmarkAblationSizeFactor(b *testing.B) {
	g, _ := gen.PlantedPartition(8000, 50, 10, 0.5, 3)
	for _, f := range []float64{14, 150, 20000} {
		b.Run(fmt.Sprintf("f=%g", f), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(8, core.ClassSocial)
				cfg.SizeFactor = f
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationVCycles compares 1, 2 and 5 V-cycles (minimal / fast /
// eco structure, §IV-D).
func BenchmarkAblationVCycles(b *testing.B) {
	g, _ := gen.PlantedPartition(8000, 50, 10, 0.8, 4)
	for _, vc := range []int{1, 2, 5} {
		b.Run(fmt.Sprintf("v=%d", vc), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(8, core.ClassSocial)
				cfg.VCycles = vc
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationLPIters varies the refinement label propagation
// iteration count around the paper's default of 6.
func BenchmarkAblationLPIters(b *testing.B) {
	g, _ := gen.PlantedPartition(8000, 50, 10, 0.8, 5)
	for _, r := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(8, core.ClassSocial)
				cfg.RefineIters = r
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationEvoBudget compares initial-population-only (fast) with
// growing evolutionary budgets on the coarsest graph.
func BenchmarkAblationEvoBudget(b *testing.B) {
	g, _ := gen.PlantedPartition(6000, 40, 10, 0.8, 6)
	coarse := g
	for _, rounds := range []int{0, 3, 8} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(8, core.ClassSocial)
				cfg.EvoRounds = rounds
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(benchPEs, coarse, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationFlows compares the multilevel pipeline with and without
// KaHIP's flow-based refinement (§II-C) on a mesh, where flows help most.
func BenchmarkAblationFlows(b *testing.B) {
	g := gen.DelaunayLike(8100, 7)
	for _, flows := range []bool{false, true} {
		name := "lp+fm"
		if flows {
			name = "lp+fm+flows"
		}
		b.Run(name, func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				cfg := kaffpa.DefaultConfig(8)
				cfg.Seed = uint64(i + 1)
				cfg.UseFlows = flows
				p, err := kaffpa.Partition(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.EdgeCut(g, p)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationObjective compares evolutionary objectives (§VI): the
// cut objective against communication-volume-oriented fitness.
func BenchmarkAblationObjective(b *testing.B) {
	g, _ := gen.PlantedPartition(4000, 30, 10, 0.8, 8)
	objectives := []struct {
		name string
		obj  evo.Objective
	}{
		{"cut", evo.ObjectiveCut},
		{"commvol", evo.ObjectiveCommVol},
		{"maxquotdeg", evo.ObjectiveMaxQuotientDegree},
	}
	for _, o := range objectives {
		b.Run(o.name, func(b *testing.B) {
			var cut, vol int64
			for i := 0; i < b.N; i++ {
				cfg := core.FastConfig(8, core.ClassSocial)
				cfg.Seed = uint64(i + 1)
				cfg.Objective = o.obj
				res, err := core.Run(benchPEs, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cut = res.Stats.Cut
				vol = partition.CommunicationVolume(g, res.Part, 8)
			}
			b.ReportMetric(float64(cut), "cut")
			b.ReportMetric(float64(vol), "commvol")
		})
	}
}

// BenchmarkModularityClustering covers the §VI clustering extension.
func BenchmarkModularityClustering(b *testing.B) {
	g, _ := gen.PlantedPartition(10000, 40, 10, 0.5, 9)
	var q float64
	for i := 0; i < b.N; i++ {
		cfg := modularity.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		_, q = modularity.Cluster(g, cfg)
	}
	b.ReportMetric(q, "modularity")
}

// --- Micro-benchmarks of the primitives ----------------------------------

func BenchmarkSeqLabelPropagation(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sclp.Cluster(g, sclp.ClusterConfig{U: 600, Iterations: 3, DegreeOrder: true, Seed: uint64(i + 1)})
	}
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

func BenchmarkParLabelPropagation(b *testing.B) {
	g, _ := gen.PlantedPartition(20000, 100, 10, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := exp.RunShrink("bench", g, benchPEs, 600, uint64(i+1))
		_ = rep
	}
}

func BenchmarkEvolutionaryCombine(b *testing.B) {
	g, _ := gen.PlantedPartition(1500, 12, 9, 0.8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := PartitionGraph(g, 4, Options{PEs: 2, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkEvoOnCoarseGraph(b *testing.B) {
	g, _ := gen.PlantedPartition(800, 8, 8, 0.6, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := evo.DefaultConfig(4)
		cfg.Seed = uint64(i + 1)
		cfg.Rounds = 1
		var cut int64
		mpi.NewWorld(2).Run(func(c *mpi.Comm) {
			p := evo.Evolve(context.Background(), c, g, cfg)
			if c.Rank() == 0 {
				cut = partition.EdgeCut(g, p)
			}
		})
		b.ReportMetric(float64(cut), "cut")
	}
}
